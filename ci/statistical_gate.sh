#!/usr/bin/env bash
# statistical_gate.sh — end-to-end proof that the statistical model-quality
# gate works AND has teeth. Trains a small fixed-seed model, validates it
# against the committed golden tolerances (must pass every check), then
# corrupts the same model's weights with Gaussian noise via the -corrupt
# hook and asserts gendt-validate rejects it with at least one named
# failing distributional check.
#
# The golden file is regenerated with:
#   go run ./cmd/gendt-validate -model <model> $GATE_ARGS \
#       -golden validate/golden/gate-a.json -update-golden
# after retraining with $TRAIN_ARGS below; the derivation is deterministic,
# so a regeneration with an unchanged model is a no-op diff.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Must match the parameters the committed golden file was derived under.
# Workers is pinned so training is bit-identical regardless of runner CPUs.
TRAIN_ARGS=(-dataset A -scale 0.02 -seed 7 -channels rsrp,rsrq
    -epochs 2 -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)
GATE_ARGS=(-dataset A -scale 0.02 -seed 7)
GOLDEN=validate/golden/gate-a.json

go build -o "$work/gendt-train" ./cmd/gendt-train
go build -o "$work/gendt-validate" ./cmd/gendt-validate

echo "=== statistical gate: train fixed-seed model ==="
"$work/gendt-train" "${TRAIN_ARGS[@]}" -out "$work/model.json" -fingerprint

echo "=== statistical gate: healthy model must pass ==="
"$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" | tee "$work/pass.log"

echo "=== statistical gate: frozen f32/int8 backends must pass ==="
# The frozen inference kernels serve the same statistical contract as the
# live model: every distributional tolerance and metamorphic invariant
# must hold at both quantized precisions (determinism is checked per
# precision inside the suite).
for prec in f32 int8; do
    "$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
        -golden "$GOLDEN" -precision "$prec" | tee "$work/pass-$prec.log"
done

echo "=== statistical gate: corrupted model must fail ==="
if "$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" -corrupt 0.5 >"$work/fail.log" 2>&1; then
    echo "FAIL: gate passed a noise-corrupted model"
    cat "$work/fail.log"
    exit 1
fi
cat "$work/fail.log"
if ! grep -q '^FAIL dist/' "$work/fail.log"; then
    echo "FAIL: corrupted run exited non-zero but named no failing dist/ check"
    exit 1
fi
echo "corrupted model rejected with named checks:"
grep '^FAIL ' "$work/fail.log" | sort -u

echo "=== statistical gate: golden regeneration is a no-op ==="
cp "$GOLDEN" "$work/golden.orig"
"$work/gendt-validate" -model "$work/model.json" "${GATE_ARGS[@]}" \
    -golden "$GOLDEN" -update-golden >/dev/null
if ! cmp -s "$GOLDEN" "$work/golden.orig"; then
    echo "FAIL: regenerated golden differs from the committed file"
    diff "$work/golden.orig" "$GOLDEN" || true
    cp "$work/golden.orig" "$GOLDEN"
    exit 1
fi

echo "statistical gate: pass on healthy, fail on corrupted, golden stable"
