#!/usr/bin/env bash
# crash_resume.sh — end-to-end proof that a SIGKILLed training run resumes
# bit-identically. Trains once straight through to record the reference
# weight fingerprint, then starts the same run with per-epoch checkpointing,
# kills it with SIGKILL mid-flight, resumes from the newest valid
# checkpoint, and asserts the resumed fingerprint equals the reference.
#
# Robust to kill timing: if the kill lands before the first checkpoint the
# resume simply starts fresh; if the run finished before the kill the
# resume is a no-op past the final epoch. Either way the final fingerprint
# must match.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Tiny but multi-epoch: big enough that an epoch takes measurable time,
# small enough for CI. Serial and 4-worker flavors cover both trainers.
common_args=(-dataset A -scale 0.015 -seed 1 -epochs 6 -hidden 8 -batch 12)

go build -o "$work/gendt-train" ./cmd/gendt-train

run_flavor() {
    local name="$1" workers="$2"
    local ckdir="$work/ck-$name"
    echo "=== crash-resume flavor: $name (workers=$workers) ==="

    local ref
    ref="$("$work/gendt-train" "${common_args[@]}" -workers "$workers" \
        -out "$work/ref-$name.json" -fingerprint | awk '/^fingerprint/ {print $2}')"
    [ -n "$ref" ] || { echo "no reference fingerprint"; exit 1; }
    echo "reference fingerprint: $ref"

    # Start the checkpointed run and SIGKILL it once at least one
    # checkpoint exists (or give up waiting and let it finish — the
    # resume invocation below handles both outcomes).
    "$work/gendt-train" "${common_args[@]}" -workers "$workers" \
        -out "$work/killed-$name.json" \
        -checkpoint-dir "$ckdir" -checkpoint-every 1 >"$work/killed-$name.log" 2>&1 &
    local pid=$!
    for _ in $(seq 1 200); do
        if ls "$ckdir"/ckpt-*.manifest.json >/dev/null 2>&1; then
            break
        fi
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.05
    done
    kill -KILL "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo "killed mid-run; checkpoints present:"
    ls -1 "$ckdir" 2>/dev/null || echo "(none — kill landed before the first checkpoint)"

    local got
    got="$("$work/gendt-train" "${common_args[@]}" -workers "$workers" \
        -out "$work/resumed-$name.json" \
        -checkpoint-dir "$ckdir" -resume -fingerprint | awk '/^fingerprint/ {print $2}')"
    echo "resumed fingerprint:   $got"
    if [ "$got" != "$ref" ]; then
        echo "FAIL: resumed fingerprint $got != reference $ref ($name)"
        exit 1
    fi
    echo "OK: $name resume is bit-identical"
}

run_flavor serial 1
run_flavor workers4 4

echo "crash-resume: all flavors bit-identical"
