#!/usr/bin/env bash
# chaos_smoke.sh — fleet resilience under injected faults. Trains a tiny
# model, boots three gendt-serve replicas, puts a seeded gendt-chaos fault
# proxy in front of each, and points gendt-lb at the proxies. Asserts:
#
#   1. with the proxies dormant, responses through the LB are bit-identical
#      to a direct replica (the proxy is transparent until armed);
#   2. with a scripted fault schedule armed — connection resets, injected
#      503 bursts, latency spikes — a fixed-rate open-loop window stays
#      >=99% successful: retries fail over around the faults;
#   3. every 503 that does escape to clients carries a reason from the
#      known X-Gendt-Reason taxonomy (draining/shed/upstream) — chaos must
#      not invent new failure modes;
#   4. the chaos control plane's /stats confirms faults were actually
#      injected (the window wasn't quietly clean).
#
# Set CHAOS_OUT to a directory to keep the JSON reports.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

DATASET=(-dataset A -scale 0.02 -seed 7)
TRAIN_ARGS=("${DATASET[@]}" -channels rsrp,rsrq
    -epochs 2 -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)

LB=http://127.0.0.1:18080
CTL=http://127.0.0.1:18090
R1=http://127.0.0.1:18081   # real replicas
R2=http://127.0.0.1:18082
R3=http://127.0.0.1:18083
C1=http://127.0.0.1:18091   # chaos proxies in front of them
C2=http://127.0.0.1:18092
C3=http://127.0.0.1:18093

echo "=== build ==="
go build -o "$work/" ./cmd/gendt-train ./cmd/gendt-serve ./cmd/gendt-lb \
    ./cmd/gendt-bench ./cmd/gendt-chaos

echo "=== train the served model ==="
"$work/gendt-train" "${TRAIN_ARGS[@]}" -out "$work/model.json"

wait_http() {
    local url="$1"
    for _ in $(seq 1 200); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $url never became healthy"
    return 1
}

for url in "$LB" "$R1" "$R2" "$R3" "$C1" "$C2" "$C3"; do
    if curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; then
        echo "FAIL: something is already listening at $url — stale fleet from an earlier run?"
        exit 1
    fi
done

echo "=== boot fleet: 3 replicas + 3 chaos proxies + lb ==="
for i in 1 2 3; do
    "$work/gendt-serve" -model "$work/model.json" "${DATASET[@]}" \
        -addr "127.0.0.1:1808$i" >"$work/r$i.log" 2>&1 &
    pids+=($!)
done
wait_http "$R1/healthz"; wait_http "$R2/healthz"; wait_http "$R3/healthz"

# One fault schedule, staggered per proxy by the per-proxy seed; dormant
# until armed. Windows (seconds from arming): resets early, a 503 burst
# mid-window, latency spikes late.
FAULTS='0-4:reset@0.08; 3-7:http:503@0.1; 6-10:latency:80ms@0.3'
"$work/gendt-chaos" -ctl 127.0.0.1:18090 -seed 42 -fault "$FAULTS" \
    -proxy "127.0.0.1:18091=$R1" \
    -proxy "127.0.0.1:18092=$R2" \
    -proxy "127.0.0.1:18093=$R3" >"$work/chaos.log" 2>&1 &
pids+=($!)
wait_http "$C1/healthz"

# One extra retry over the default: three replicas with independent fault
# draws make a third successor attempt nearly always land.
"$work/gendt-lb" -addr 127.0.0.1:18080 -replica "$C1" -replica "$C2" -replica "$C3" \
    -retries 3 -probe-interval 100ms -probe-timeout 1s >"$work/lb.log" 2>&1 &
pids+=($!)
wait_http "$LB/healthz"

BENCH=("${DATASET[@]}" -routes 6 -steps 40 -trace-seed 1 -arrival fixed -timeout 10s)

echo "=== dormant proxies are transparent: LB vs direct replica bit-identity ==="
"$work/gendt-bench" -target "$LB" -verify-against "$R1" -verify-n 4 "${BENCH[@]}"

echo "=== arm the fault schedule ==="
curl -fsS -X POST "$CTL/arm" >/dev/null

echo "=== fixed-rate window under chaos: >=99% success ==="
if ! "$work/gendt-bench" -target "$LB" "${BENCH[@]}" -rps 12 -duration 10s -warmup 0s \
    -name chaos-window -max-error-rate 0.01 -out "$work/bench-chaos.json"; then
    echo "FAIL: load window under chaos exceeded 1% errors"
    echo "--- chaos stats:"; curl -fsS "$CTL/stats" || true
    echo "--- lb vars:"; curl -fsS "$LB/debug/vars" || true
    exit 1
fi

echo "=== escaped 503s must use the known reason taxonomy ==="
reasons="$(jq -r '.reasons // {} | keys[]' "$work/bench-chaos.json")"
for r in $reasons; do
    case "$r" in
        draining|shed|upstream) ;;
        *)
            echo "FAIL: unknown X-Gendt-Reason \"$r\" escaped to clients"
            jq '.reasons' "$work/bench-chaos.json"
            exit 1
            ;;
    esac
done
echo "client-visible reasons: $(jq -c '.reasons // {}' "$work/bench-chaos.json")"

echo "=== chaos control plane must confirm injected faults ==="
stats="$(curl -fsS "$CTL/stats")"
echo "$stats"
injected="$(echo "$stats" | jq '[.[].injected // {} | to_entries[].value] | add // 0')"
if [ "$injected" -lt 5 ]; then
    echo "FAIL: only $injected faults injected — the chaos window tested nothing"
    exit 1
fi
echo "total faults injected: $injected"

echo "=== disarm: fleet must return to bit-identical clean serving ==="
curl -fsS -X POST "$CTL/disarm" >/dev/null
"$work/gendt-bench" -target "$LB" -verify-against "$R2" -verify-n 2 "${BENCH[@]}"

if [ -n "${CHAOS_OUT:-}" ]; then
    mkdir -p "$CHAOS_OUT"
    cp "$work/bench-chaos.json" "$CHAOS_OUT/"
    echo "$stats" >"$CHAOS_OUT/chaos-stats.json"
    echo "reports copied to $CHAOS_OUT/"
fi

echo "chaos-smoke: OK"
