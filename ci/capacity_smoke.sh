#!/usr/bin/env bash
# capacity_smoke.sh — end-to-end fleet-serving gate. Trains a tiny model,
# boots two gendt-serve replicas behind a gendt-lb front tier, and asserts:
#
#   1. responses through the LB are bit-identical to each direct replica
#      (consistent hashing must not change what a seed generates);
#   2. a fixed-rate open-loop window sees zero errors after warmup;
#   3. SIGKILLing one replica mid-run leaves the fleet >=99% successful —
#      connect errors fail over to ring successors and the prober ejects
#      the dead replica;
#   4. /debug/vars records the ejection.
#
# The clean window runs three times; the first report is gated against
# BENCH_serve.json via `benchcheck -serve` (fail mode, tolerances derived
# from measured spread) and the spread across all three is summarized by
# `benchcheck -serve -variance`. Set CAPACITY_OUT to a directory to keep
# the JSON reports (CI uploads them as artifacts).
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

# World + model sizing matches the statistical gate: big enough to exercise
# real generation, small enough for a shared CI runner.
DATASET=(-dataset A -scale 0.02 -seed 7)
TRAIN_ARGS=("${DATASET[@]}" -channels rsrp,rsrq
    -epochs 2 -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)

LB=http://127.0.0.1:18080
R1=http://127.0.0.1:18081
R2=http://127.0.0.1:18082

echo "=== build ==="
go build -o "$work/" ./cmd/gendt-train ./cmd/gendt-serve ./cmd/gendt-lb ./cmd/gendt-bench

echo "=== train the served model ==="
"$work/gendt-train" "${TRAIN_ARGS[@]}" -out "$work/model.json"

wait_http() {
    local url="$1"
    for _ in $(seq 1 200); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $url never became healthy"
    return 1
}

for url in "$LB" "$R1" "$R2"; do
    if curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; then
        echo "FAIL: something is already listening at $url — stale fleet from an earlier run?"
        exit 1
    fi
done

echo "=== boot fleet: 2 replicas + lb ==="
"$work/gendt-serve" -model "$work/model.json" "${DATASET[@]}" \
    -addr 127.0.0.1:18081 >"$work/r1.log" 2>&1 &
pids+=($!)
"$work/gendt-serve" -model "$work/model.json" "${DATASET[@]}" \
    -addr 127.0.0.1:18082 >"$work/r2.log" 2>&1 &
r2_pid=$!
pids+=("$r2_pid")
wait_http "$R1/healthz"
wait_http "$R2/healthz"

"$work/gendt-lb" -addr 127.0.0.1:18080 -replica "$R1" -replica "$R2" \
    -probe-interval 100ms -probe-timeout 1s >"$work/lb.log" 2>&1 &
pids+=($!)
wait_http "$LB/healthz"

# Bench trace must be synthesized from the same world the fleet serves.
BENCH=("${DATASET[@]}" -routes 6 -steps 40 -trace-seed 1 -arrival fixed -timeout 10s)

echo "=== bit-identity: LB vs each direct replica ==="
"$work/gendt-bench" -target "$LB" -verify-against "$R1" -verify-n 4 "${BENCH[@]}"
"$work/gendt-bench" -target "$LB" -verify-against "$R2" -verify-n 4 "${BENCH[@]}"

echo "=== clean fixed-rate windows: zero errors after warmup, x3 for variance ==="
# Three identical windows: the first is the gated measurement, the spread
# across all three goes into the variance artifact that justifies the
# fail-mode tolerances in BENCH_serve.json.
for i in 1 2 3; do
    "$work/gendt-bench" -target "$LB" "${BENCH[@]}" -rps 12 -duration 6s -warmup 2s \
        -name capacity-smoke -max-error-rate 0 -out "$work/bench-serve-$i.json"
done
cp "$work/bench-serve-1.json" "$work/bench-serve.json"

echo "=== run-to-run variance across the clean windows ==="
go run ./ci/benchcheck -serve -variance \
    -input "$work/bench-serve-1.json,$work/bench-serve-2.json,$work/bench-serve-3.json" \
    -variance-out "$work/bench-variance.json"

echo "=== SIGKILL replica 2 mid-run: fleet must stay >=99% successful ==="
"$work/gendt-bench" -target "$LB" "${BENCH[@]}" -rps 12 -duration 10s -warmup 1s \
    -name capacity-kill -max-error-rate 0.01 -out "$work/bench-kill.json" &
bench_pid=$!
sleep 3
kill -KILL "$r2_pid"
echo "replica 2 killed"
if ! wait "$bench_pid"; then
    echo "FAIL: load window with one replica killed exceeded 1% errors"
    tail -5 "$work/lb.log" || true
    exit 1
fi

echo "=== LB must have ejected the killed replica ==="
vars="$(curl -fsS "$LB/debug/vars")"
if ! echo "$vars" | grep -Eq '"ejections": [1-9]'; then
    echo "FAIL: no ejection recorded in /debug/vars:"
    echo "$vars"
    exit 1
fi
if ! echo "$vars" | grep -q '"healthy": false'; then
    echo "FAIL: killed replica still marked healthy in /debug/vars:"
    echo "$vars"
    exit 1
fi
echo "ejection recorded; surviving fleet:"
echo "$vars" | grep -E '"(healthy|requests|retries|ejections)":' || true

echo "=== compare clean window against BENCH_serve.json ==="
go run ./ci/benchcheck -serve -baseline BENCH_serve.json -input "$work/bench-serve.json"

if [ -n "${CAPACITY_OUT:-}" ]; then
    mkdir -p "$CAPACITY_OUT"
    cp "$work"/bench-serve*.json "$work/bench-kill.json" "$work/bench-variance.json" "$CAPACITY_OUT/"
    echo "reports copied to $CAPACITY_OUT/"
fi

echo "capacity-smoke: OK"
