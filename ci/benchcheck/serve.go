// Serving-capacity mode: `benchcheck -serve` compares a gendt-bench JSON
// report (single window or RPS sweep) against the committed
// BENCH_serve.json baseline. Unlike the microbenchmark gate, serving tail
// latency on shared CI runners is noisy, so the baseline carries a mode
// field: "warn" prints regressions without failing the job, "fail" gates.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"gendt/internal/loadgen"
)

// ServeEntry is one baseline measurement, keyed by report name.
type ServeEntry struct {
	OfferedRPS float64 `json:"offered_rps"`
	P99Ms      float64 `json:"p99_ms"`
	ErrorRate  float64 `json:"error_rate"`
}

// ServeTolerance bounds acceptable drift: p99 latency may regress by a
// percentage, error rate by an absolute delta (percentages are meaningless
// against a zero-error baseline).
type ServeTolerance struct {
	P99MsPct     float64 `json:"p99_ms_pct"`
	ErrorRateAbs float64 `json:"error_rate_abs"`
}

// ServeBaseline is the BENCH_serve.json file format.
type ServeBaseline struct {
	Description string                `json:"description"`
	Mode        string                `json:"mode"` // "warn" or "fail"
	Tolerance   ServeTolerance        `json:"tolerance"`
	Entries     map[string]ServeEntry `json:"entries"`
}

// ParseServeReports reads a gendt-bench JSON document — either a single
// replay report or a sweep — and returns the reports keyed by name.
func ParseServeReports(r io.Reader) (map[string]loadgen.Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var sweep loadgen.SweepReport
	if err := json.Unmarshal(raw, &sweep); err != nil {
		return nil, fmt.Errorf("benchcheck -serve: bad report JSON: %w", err)
	}
	reports := sweep.Reports
	if len(reports) == 0 {
		var single loadgen.Report
		if err := json.Unmarshal(raw, &single); err != nil {
			return nil, fmt.Errorf("benchcheck -serve: bad report JSON: %w", err)
		}
		if single.Sent == 0 && single.Target == "" {
			return nil, fmt.Errorf("benchcheck -serve: input holds no reports")
		}
		reports = []loadgen.Report{single}
	}
	out := make(map[string]loadgen.Report, len(reports))
	for _, rep := range reports {
		name := rep.Name
		if name == "" {
			name = fmt.Sprintf("rps%g", rep.OfferedRPS)
		}
		out[name] = rep
	}
	return out, nil
}

// CompareServe checks every baseline entry against the measured reports.
// Measured reports absent from the baseline are ignored (adopted via
// -update, not silently gated), mirroring the microbenchmark gate.
func CompareServe(base ServeBaseline, got map[string]loadgen.Report) []string {
	var problems []string
	names := make([]string, 0, len(base.Entries))
	for name := range base.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Entries[name]
		g, ok := got[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from bench report", name))
			continue
		}
		if b.P99Ms > 0 {
			pctUp := 100 * (g.LatencyMs.P99 - b.P99Ms) / b.P99Ms
			if pctUp > base.Tolerance.P99MsPct {
				problems = append(problems, fmt.Sprintf(
					"%s: p99 regressed %.1f%% (baseline %.1fms, got %.1fms)",
					name, pctUp, b.P99Ms, g.LatencyMs.P99))
			}
		}
		if delta := g.ErrorRate - b.ErrorRate; delta > base.Tolerance.ErrorRateAbs {
			problems = append(problems, fmt.Sprintf(
				"%s: error rate rose %.4f (baseline %.4f, got %.4f)",
				name, delta, b.ErrorRate, g.ErrorRate))
		}
	}
	return problems
}

// runServe is the -serve entry point: compare (or -update) BENCH_serve.json
// against a gendt-bench report.
func runServe(baselinePath string, in io.Reader, update bool) error {
	got, err := ParseServeReports(in)
	if err != nil {
		return err
	}

	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base ServeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcheck -serve: %s: %w", baselinePath, err)
	}
	if base.Mode != "warn" && base.Mode != "fail" {
		return fmt.Errorf("benchcheck -serve: %s: mode %q is neither warn nor fail", baselinePath, base.Mode)
	}

	if update {
		if base.Entries == nil {
			base.Entries = make(map[string]ServeEntry)
		}
		for name, g := range got {
			base.Entries[name] = ServeEntry{
				OfferedRPS: g.OfferedRPS,
				P99Ms:      g.LatencyMs.P99,
				ErrorRate:  g.ErrorRate,
			}
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchcheck: updated %s (%d entries)\n", baselinePath, len(base.Entries))
		return nil
	}

	fmt.Printf("benchcheck -serve: %d measured, %d gated (mode %s; tolerance p99 +%.0f%%, error rate +%.3f)\n",
		len(got), len(base.Entries), base.Mode, base.Tolerance.P99MsPct, base.Tolerance.ErrorRateAbs)
	for name, b := range base.Entries {
		if g, ok := got[name]; ok {
			fmt.Printf("  %-28s p99 %8.1fms -> %8.1fms   err %.4f -> %.4f   achieved %.1f/%.1f rps\n",
				name, b.P99Ms, g.LatencyMs.P99, b.ErrorRate, g.ErrorRate, g.AchievedRPS, g.OfferedRPS)
		}
	}
	problems := CompareServe(base, got)
	if len(problems) == 0 {
		fmt.Println("benchcheck: OK")
		return nil
	}
	if base.Mode == "warn" {
		for _, p := range problems {
			fmt.Println("WARN:", p)
		}
		fmt.Printf("benchcheck: %d serving regression(s), warn-only mode — not failing\n", len(problems))
		return nil
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "FAIL:", p)
	}
	return fmt.Errorf("benchcheck: %d serving regression(s)", len(problems))
}
