// Command benchcheck compares `go test -bench` output against a committed
// baseline (BENCH_baseline.json) and fails when a benchmark regresses
// beyond the configured tolerances. It is the CI bench-regression gate:
// allocs/op is deterministic and gets a tight bound; ns/op varies with the
// runner and gets a loose one.
//
// Usage:
//
//	go test -run XXX -bench 'Train|Generate' -benchtime 3x -benchmem ./... | tee bench.txt
//	go run ./ci/benchcheck -baseline BENCH_baseline.json -input bench.txt
//
// With -update the baseline file is rewritten from the input instead of
// checked (for refreshing after an intentional perf change).
//
// With -serve the input is a gendt-bench JSON report (single window or RPS
// sweep) and the baseline is BENCH_serve.json; see serve.go.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Baseline is the committed reference file format.
type Baseline struct {
	Description  string    `json:"description"`
	TolerancePct Tolerance `json:"tolerance_pct"`
	// ToleranceOverrides tightens (or loosens) the gate per benchmark:
	// entries here replace TolerancePct for the named benchmark. A zero
	// field inherits the global value. Batched-GEMM throughput entries use
	// this for a tighter ns/op bound than the global default.
	ToleranceOverrides map[string]Tolerance `json:"tolerance_overrides,omitempty"`
	Benchmarks         map[string]Result    `json:"benchmarks"`
}

// toleranceFor resolves the effective tolerance for one benchmark.
func (b Baseline) toleranceFor(name string) Tolerance {
	tol := b.TolerancePct
	if ov, ok := b.ToleranceOverrides[name]; ok {
		if ov.NsOp > 0 {
			tol.NsOp = ov.NsOp
		}
		if ov.AllocsOp > 0 {
			tol.AllocsOp = ov.AllocsOp
		}
	}
	return tol
}

// Tolerance holds the allowed regression percentages.
type Tolerance struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// benchLine matches the name and ns/op of one `go test -bench` result
// line, e.g.
//
//	BenchmarkTrain/workers=1-8  3  33569627 ns/op  520496 B/op  6126 allocs/op
//
// allocs/op is extracted separately by allocsOp so that custom
// b.ReportMetric columns (e.g. the batched-GEMM benchmarks' seq/s) between
// ns/op and the -benchmem columns don't hide the allocation count.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op`)

// allocsOp matches the -benchmem allocation column anywhere in the line.
var allocsOp = regexp.MustCompile(`([\d.]+) allocs/op`)

// gomaxprocsSuffix is the trailing -N the bench harness appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts benchmark results from `go test -bench` output,
// stripping the GOMAXPROCS suffix from names. Repeated runs of one
// benchmark keep the best (lowest ns/op) measurement, matching benchstat's
// robustness against warm-up noise.
func ParseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcheck: %q: %w", name, err)
		}
		res := Result{NsOp: ns}
		if am := allocsOp.FindStringSubmatch(line); am != nil {
			if res.AllocsOp, err = strconv.ParseFloat(am[1], 64); err != nil {
				return nil, fmt.Errorf("benchcheck: %q: %w", name, err)
			}
		}
		if prev, ok := out[name]; !ok || res.NsOp < prev.NsOp {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// Problem is one detected regression or inconsistency.
type Problem struct {
	Name   string
	Metric string
	Base   float64
	Got    float64
	PctUp  float64
}

func (p Problem) String() string {
	if p.Base == 0 && p.Got == 0 {
		return fmt.Sprintf("%s: missing from bench output", p.Name)
	}
	return fmt.Sprintf("%s: %s regressed %.1f%% (baseline %.0f, got %.0f)",
		p.Name, p.Metric, p.PctUp, p.Base, p.Got)
}

// Compare checks every baseline benchmark against the measured results.
// Benchmarks measured but absent from the baseline are ignored (new
// benchmarks are adopted by -update, not silently gated).
func Compare(base Baseline, got map[string]Result) []Problem {
	var problems []Problem
	check := func(name, metric string, baseV, gotV, tolPct float64) {
		if baseV <= 0 {
			return // nothing to compare against
		}
		pctUp := 100 * (gotV - baseV) / baseV
		if pctUp > tolPct {
			problems = append(problems, Problem{Name: name, Metric: metric, Base: baseV, Got: gotV, PctUp: pctUp})
		}
	}
	for name, b := range base.Benchmarks {
		g, ok := got[name]
		if !ok {
			problems = append(problems, Problem{Name: name})
			continue
		}
		tol := base.toleranceFor(name)
		check(name, "ns/op", b.NsOp, g.NsOp, tol.NsOp)
		check(name, "allocs/op", b.AllocsOp, g.AllocsOp, tol.AllocsOp)
	}
	return problems
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
	input := flag.String("input", "", "bench output file ('-' or empty reads stdin)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of checking")
	serveMode := flag.Bool("serve", false, "input is a gendt-bench JSON report; baseline is BENCH_serve.json")
	variance := flag.Bool("variance", false, "with -serve: -input is a comma-separated list of repeated bench reports; summarize their spread instead of gating")
	varianceOut := flag.String("variance-out", "", "with -variance: write the spread report to this JSON file")
	flag.Parse()

	if *variance {
		return runVariance(splitInputs(*input), *varianceOut)
	}

	var in io.Reader = os.Stdin
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	if *serveMode {
		return runServe(*baselinePath, in, *update)
	}
	got, err := ParseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("benchcheck: no benchmark lines found in input")
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("benchcheck: %s: %w", *baselinePath, err)
	}

	if *update {
		for name := range base.Benchmarks {
			if g, ok := got[name]; ok {
				base.Benchmarks[name] = g
			}
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchcheck: updated %s (%d benchmarks)\n", *baselinePath, len(base.Benchmarks))
		return nil
	}

	fmt.Printf("benchcheck: %d measured, %d gated (tolerance ns/op +%.0f%%, allocs/op +%.0f%%)\n",
		len(got), len(base.Benchmarks), base.TolerancePct.NsOp, base.TolerancePct.AllocsOp)
	for name, b := range base.Benchmarks {
		if g, ok := got[name]; ok {
			fmt.Printf("  %-40s ns/op %12.0f -> %12.0f   allocs/op %8.0f -> %8.0f\n",
				name, b.NsOp, g.NsOp, b.AllocsOp, g.AllocsOp)
		}
	}
	problems := Compare(base, got)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "FAIL:", p)
		}
		return fmt.Errorf("benchcheck: %d regression(s)", len(problems))
	}
	fmt.Println("benchcheck: OK")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
