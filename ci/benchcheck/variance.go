// Variance mode: `benchcheck -serve -variance` characterizes run-to-run
// spread across repeated gendt-bench windows so the serving baseline's
// tolerances are derived from measured runner noise instead of guessed.
// The capacity-smoke job runs its clean window N times, feeds all reports
// here, and uploads the resulting spread artifact; BENCH_serve.json's
// p99_ms_pct should comfortably exceed the suggested tolerance before the
// baseline runs in "fail" mode.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"gendt/internal/loadgen"
)

// VarianceEntry is the observed spread of one named window across runs.
type VarianceEntry struct {
	Runs         int     `json:"runs"`
	P99MsMin     float64 `json:"p99_ms_min"`
	P99MsMax     float64 `json:"p99_ms_max"`
	P99MsMean    float64 `json:"p99_ms_mean"`
	P99SpreadPct float64 `json:"p99_spread_pct"` // (max-min)/min * 100
	ErrorRateMax float64 `json:"error_rate_max"`
}

// VarianceReport is the artifact the capacity-smoke job uploads.
type VarianceReport struct {
	Inputs  []string                 `json:"inputs"`
	Entries map[string]VarianceEntry `json:"entries"`
	// SuggestedP99TolPct is a p99_ms_pct that would have absorbed this
	// session's worst spread three times over (floor 100%): the margin a
	// "fail"-mode baseline needs against a noisier future runner.
	SuggestedP99TolPct float64 `json:"suggested_p99_tolerance_pct"`
}

// runVariance reads one gendt-bench report per input file and summarizes
// the per-window spread. With outPath non-empty the report is also written
// as JSON.
func runVariance(inputs []string, outPath string) error {
	if len(inputs) < 2 {
		return fmt.Errorf("benchcheck -variance: need at least 2 input reports, got %d", len(inputs))
	}
	perName := make(map[string][]loadgen.Report)
	for _, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		got, err := ParseServeReports(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for name, rep := range got {
			perName[name] = append(perName[name], rep)
		}
	}

	out := VarianceReport{Inputs: inputs, Entries: make(map[string]VarianceEntry, len(perName))}
	names := make([]string, 0, len(perName))
	for name := range perName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		reps := perName[name]
		e := VarianceEntry{Runs: len(reps)}
		for i, r := range reps {
			p99 := r.LatencyMs.P99
			if i == 0 || p99 < e.P99MsMin {
				e.P99MsMin = p99
			}
			if p99 > e.P99MsMax {
				e.P99MsMax = p99
			}
			e.P99MsMean += p99 / float64(len(reps))
			if r.ErrorRate > e.ErrorRateMax {
				e.ErrorRateMax = r.ErrorRate
			}
		}
		if e.P99MsMin > 0 {
			e.P99SpreadPct = 100 * (e.P99MsMax - e.P99MsMin) / e.P99MsMin
		}
		out.Entries[name] = e
		if tol := 3 * e.P99SpreadPct; tol > out.SuggestedP99TolPct {
			out.SuggestedP99TolPct = tol
		}
		fmt.Printf("  %-28s %d runs   p99 %.1f..%.1fms (mean %.1f, spread %.0f%%)   worst err %.4f\n",
			name, e.Runs, e.P99MsMin, e.P99MsMax, e.P99MsMean, e.P99SpreadPct, e.ErrorRateMax)
	}
	if out.SuggestedP99TolPct < 100 {
		out.SuggestedP99TolPct = 100
	}
	fmt.Printf("benchcheck -variance: suggested p99_ms_pct >= %.0f over %d runs\n",
		out.SuggestedP99TolPct, len(inputs))

	if outPath != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchcheck -variance: wrote %s\n", outPath)
	}
	return nil
}

// splitInputs turns the -input flag's comma-separated list into paths.
func splitInputs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
