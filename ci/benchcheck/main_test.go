package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: gendt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrain/workers=1-8         	       3	  33569627 ns/op	  520496 B/op	    6126 allocs/op
BenchmarkTrain/workers=4-8         	       3	  12000000 ns/op	  600000 B/op	    6200 allocs/op
BenchmarkGenerate-8                	       3	    646789 ns/op	    3377 B/op	      12 allocs/op
BenchmarkGenerate-8                	       3	    700000 ns/op	    3377 B/op	      12 allocs/op
BenchmarkModelUncertainty/workers=1-8 	       3	   3330677 ns/op	   30683 B/op	     472 allocs/op
PASS
ok  	gendt	2.184s
`

func baseline() Baseline {
	return Baseline{
		TolerancePct: Tolerance{NsOp: 50, AllocsOp: 25},
		Benchmarks: map[string]Result{
			"BenchmarkTrain/workers=1":            {NsOp: 33569627, AllocsOp: 6126},
			"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
			"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
		},
	}
}

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %+v", len(got), got)
	}
	g, ok := got["BenchmarkGenerate"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	// Two runs: the faster one wins.
	if g.NsOp != 646789 || g.AllocsOp != 12 {
		t.Fatalf("BenchmarkGenerate = %+v", g)
	}
	if tr := got["BenchmarkTrain/workers=1"]; tr.AllocsOp != 6126 {
		t.Fatalf("sub-benchmark = %+v", tr)
	}
}

func TestCompareClean(t *testing.T) {
	got, _ := ParseBench(strings.NewReader(sampleOutput))
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627 * 1.4, AllocsOp: 6126 * 1.2},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", problems)
	}
}

func TestCompareNsRegression(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627 * 1.6, AllocsOp: 6126},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || problems[0].Metric != "ns/op" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627, AllocsOp: 6126},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 16}, // +33%
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" || problems[0].Name != "BenchmarkGenerate" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	got := map[string]Result{
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || !strings.Contains(problems[0].String(), "missing") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareIgnoresExtraBenchmarks(t *testing.T) {
	got, _ := ParseBench(strings.NewReader(sampleOutput))
	got["BenchmarkSomethingNew"] = Result{NsOp: 1, AllocsOp: 1e9}
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("extra benchmark gated: %v", problems)
	}
}
