package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: gendt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTrain/workers=1-8         	       3	  33569627 ns/op	  520496 B/op	    6126 allocs/op
BenchmarkTrain/workers=4-8         	       3	  12000000 ns/op	  600000 B/op	    6200 allocs/op
BenchmarkGenerate-8                	       3	    646789 ns/op	    3377 B/op	      12 allocs/op
BenchmarkGenerate-8                	       3	    700000 ns/op	    3377 B/op	      12 allocs/op
BenchmarkModelUncertainty/workers=1-8 	       3	   3330677 ns/op	   30683 B/op	     472 allocs/op
PASS
ok  	gendt	2.184s
`

func baseline() Baseline {
	return Baseline{
		TolerancePct: Tolerance{NsOp: 50, AllocsOp: 25},
		Benchmarks: map[string]Result{
			"BenchmarkTrain/workers=1":            {NsOp: 33569627, AllocsOp: 6126},
			"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
			"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
		},
	}
}

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %+v", len(got), got)
	}
	g, ok := got["BenchmarkGenerate"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	// Two runs: the faster one wins.
	if g.NsOp != 646789 || g.AllocsOp != 12 {
		t.Fatalf("BenchmarkGenerate = %+v", g)
	}
	if tr := got["BenchmarkTrain/workers=1"]; tr.AllocsOp != 6126 {
		t.Fatalf("sub-benchmark = %+v", tr)
	}
}

func TestParseBenchCustomMetric(t *testing.T) {
	// A b.ReportMetric column between ns/op and the -benchmem columns
	// (like the batched-GEMM benchmarks' seq/s) must not hide allocs/op.
	const line = "BenchmarkGenerateBatch/f32x8-8  3  11350691 ns/op  704.9 seq/s  24256 B/op  78 allocs/op\n"
	got, err := ParseBench(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := got["BenchmarkGenerateBatch/f32x8"]
	if !ok {
		t.Fatalf("missing benchmark: %+v", got)
	}
	if g.NsOp != 11350691 || g.AllocsOp != 78 {
		t.Fatalf("BenchmarkGenerateBatch/f32x8 = %+v, want ns 11350691 allocs 78", g)
	}
}

func TestCompareClean(t *testing.T) {
	got, _ := ParseBench(strings.NewReader(sampleOutput))
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627 * 1.4, AllocsOp: 6126 * 1.2},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", problems)
	}
}

func TestCompareNsRegression(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627 * 1.6, AllocsOp: 6126},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || problems[0].Metric != "ns/op" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627, AllocsOp: 6126},
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 16}, // +33%
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" || problems[0].Name != "BenchmarkGenerate" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	got := map[string]Result{
		"BenchmarkGenerate":                   {NsOp: 646789, AllocsOp: 12},
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(baseline(), got)
	if len(problems) != 1 || !strings.Contains(problems[0].String(), "missing") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareToleranceOverrides(t *testing.T) {
	base := baseline()
	// Tighten BenchmarkGenerate's ns/op gate to 25% while the global bound
	// stays 50%; its allocs/op bound inherits the global 25%.
	base.ToleranceOverrides = map[string]Tolerance{
		"BenchmarkGenerate": {NsOp: 25},
	}
	got := map[string]Result{
		"BenchmarkTrain/workers=1":            {NsOp: 33569627 * 1.4, AllocsOp: 6126}, // +40%: global 50% tolerates it
		"BenchmarkGenerate":                   {NsOp: 646789 * 1.4, AllocsOp: 12},     // +40%: override 25% flags it
		"BenchmarkModelUncertainty/workers=1": {NsOp: 3330677, AllocsOp: 472},
	}
	problems := Compare(base, got)
	if len(problems) != 1 || problems[0].Name != "BenchmarkGenerate" || problems[0].Metric != "ns/op" {
		t.Fatalf("problems = %v", problems)
	}
	// Inherited allocs/op bound still gates.
	got["BenchmarkGenerate"] = Result{NsOp: 646789, AllocsOp: 16} // +33%
	problems = Compare(base, got)
	if len(problems) != 1 || problems[0].Metric != "allocs/op" {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareIgnoresExtraBenchmarks(t *testing.T) {
	got, _ := ParseBench(strings.NewReader(sampleOutput))
	got["BenchmarkSomethingNew"] = Result{NsOp: 1, AllocsOp: 1e9}
	if problems := Compare(baseline(), got); len(problems) != 0 {
		t.Fatalf("extra benchmark gated: %v", problems)
	}
}

const sampleServeSweep = `{
  "reports": [
    {"name": "smoke-rps10", "target": "http://127.0.0.1:8080", "offered_rps": 10,
     "sent": 100, "measured": 80, "succeeded": 80, "errors": 0,
     "achieved_rps": 10, "success_rate": 1, "error_rate": 0,
     "status": {"200": 80},
     "latency_ms": {"p50": 12, "p90": 20, "p99": 40, "p999": 55, "mean": 14, "max": 60, "count": 80}},
    {"name": "smoke-rps20", "target": "http://127.0.0.1:8080", "offered_rps": 20,
     "sent": 200, "measured": 160, "succeeded": 158, "errors": 2,
     "achieved_rps": 19.8, "success_rate": 0.9875, "error_rate": 0.0125,
     "status": {"200": 158, "503": 2},
     "latency_ms": {"p50": 15, "p90": 30, "p99": 80, "p999": 120, "mean": 18, "max": 130, "count": 158}}
  ],
  "saturation": {"found": false, "max_good_rps": 20}
}`

func serveBaseline() ServeBaseline {
	return ServeBaseline{
		Mode:      "warn",
		Tolerance: ServeTolerance{P99MsPct: 100, ErrorRateAbs: 0.02},
		Entries: map[string]ServeEntry{
			"smoke-rps10": {OfferedRPS: 10, P99Ms: 40, ErrorRate: 0},
			"smoke-rps20": {OfferedRPS: 20, P99Ms: 80, ErrorRate: 0.0125},
		},
	}
}

func TestParseServeReportsSweep(t *testing.T) {
	got, err := ParseServeReports(strings.NewReader(sampleServeSweep))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d reports: %+v", len(got), got)
	}
	r := got["smoke-rps20"]
	if r.LatencyMs.P99 != 80 || r.ErrorRate != 0.0125 {
		t.Fatalf("smoke-rps20 = %+v", r)
	}
}

func TestParseServeReportsSingle(t *testing.T) {
	single := `{"name": "", "target": "http://x", "offered_rps": 15, "sent": 10,
		"error_rate": 0, "latency_ms": {"p99": 33, "count": 10}}`
	got, err := ParseServeReports(strings.NewReader(single))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["rps15"]
	if !ok || r.LatencyMs.P99 != 33 {
		t.Fatalf("unnamed single report not keyed by rate: %+v", got)
	}
}

func TestParseServeReportsRejectsEmpty(t *testing.T) {
	if _, err := ParseServeReports(strings.NewReader(`{}`)); err == nil {
		t.Fatal("empty document accepted")
	}
	if _, err := ParseServeReports(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed document accepted")
	}
}

func TestCompareServeClean(t *testing.T) {
	got, _ := ParseServeReports(strings.NewReader(sampleServeSweep))
	if problems := CompareServe(serveBaseline(), got); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCompareServeP99Regression(t *testing.T) {
	base := serveBaseline()
	base.Entries["smoke-rps10"] = ServeEntry{OfferedRPS: 10, P99Ms: 15, ErrorRate: 0}
	got, _ := ParseServeReports(strings.NewReader(sampleServeSweep))
	problems := CompareServe(base, got) // measured p99 40 vs baseline 15: +167% > 100%
	if len(problems) != 1 || !strings.Contains(problems[0], "p99 regressed") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareServeErrorRateAbsolute(t *testing.T) {
	base := serveBaseline()
	base.Entries["smoke-rps20"] = ServeEntry{OfferedRPS: 20, P99Ms: 80, ErrorRate: 0}
	base.Tolerance.ErrorRateAbs = 0.01
	got, _ := ParseServeReports(strings.NewReader(sampleServeSweep))
	problems := CompareServe(base, got) // 0.0125 - 0 > 0.01 absolute
	if len(problems) != 1 || !strings.Contains(problems[0], "error rate rose") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCompareServeMissingEntry(t *testing.T) {
	base := serveBaseline()
	base.Entries["smoke-rps40"] = ServeEntry{OfferedRPS: 40, P99Ms: 100}
	got, _ := ParseServeReports(strings.NewReader(sampleServeSweep))
	problems := CompareServe(base, got)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestRunServeWarnModeDoesNotFail(t *testing.T) {
	dir := t.TempDir()
	base := serveBaseline()
	base.Entries["smoke-rps10"] = ServeEntry{OfferedRPS: 10, P99Ms: 1, ErrorRate: 0} // guaranteed regression
	writeServeBaseline(t, dir+"/BENCH_serve.json", base)
	if err := runServe(dir+"/BENCH_serve.json", strings.NewReader(sampleServeSweep), false); err != nil {
		t.Fatalf("warn mode failed the check: %v", err)
	}
	base.Mode = "fail"
	writeServeBaseline(t, dir+"/BENCH_serve.json", base)
	if err := runServe(dir+"/BENCH_serve.json", strings.NewReader(sampleServeSweep), false); err == nil {
		t.Fatal("fail mode let a regression through")
	}
	base.Mode = "someday"
	writeServeBaseline(t, dir+"/BENCH_serve.json", base)
	if err := runServe(dir+"/BENCH_serve.json", strings.NewReader(sampleServeSweep), false); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunServeUpdateAdoptsEntries(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_serve.json"
	writeServeBaseline(t, path, ServeBaseline{Mode: "warn", Tolerance: ServeTolerance{P99MsPct: 100, ErrorRateAbs: 0.02}})
	if err := runServe(path, strings.NewReader(sampleServeSweep), true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base ServeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != 2 || base.Entries["smoke-rps10"].P99Ms != 40 {
		t.Fatalf("update did not adopt measured entries: %+v", base.Entries)
	}
	if base.Mode != "warn" || base.Tolerance.P99MsPct != 100 {
		t.Fatalf("update clobbered mode/tolerance: %+v", base)
	}
	// Checking against the just-updated baseline must be clean.
	if err := runServe(path, strings.NewReader(sampleServeSweep), false); err != nil {
		t.Fatalf("self-check after update: %v", err)
	}
}

func writeServeBaseline(t *testing.T, path string, base ServeBaseline) {
	t.Helper()
	buf, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
