#!/usr/bin/env bash
# rollout_smoke.sh — end-to-end proof that validator-gated rolling rollout
# promotes good models and rolls bad ones back. Trains a current model and
# two candidates — a healthy one (same recipe, one more epoch) and a
# negative control (the healthy candidate with Gaussian weight noise, via
# gendt-validate's -corrupt/-corrupt-out hook) — then boots three replicas
# off one shared serving path behind gendt-lb and asserts:
#
#   1. rolling out the CORRUPT candidate halts at the first replica: the
#      per-replica statistical gate fails, gendt-rollout exits non-zero,
#      the previous model file is restored byte-for-byte, every replica
#      serves the previous weights again, the LB's /debug/vars reports
#      phase "rolled_back" with a dist/ check in the reason, and a fixed
#      /v1/generate request answers bit-identically to before the attempt;
#   2. rolling out the HEALTHY candidate completes: exit 0, phase "done"
#      with 3/3 promoted, the serving path holds the candidate bytes, and
#      every replica reports the candidate's weight fingerprint.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

DATASET=(-dataset A -scale 0.02 -seed 7)
TRAIN_ARGS=("${DATASET[@]}" -channels rsrp,rsrq
    -hidden 12 -batch 12 -step 6 -maxcells 6 -workers 2)
GOLDEN=validate/golden/gate-a.json
TOKEN=rollout-smoke-token

LB=http://127.0.0.1:18080
R1=http://127.0.0.1:18081
R2=http://127.0.0.1:18082
R3=http://127.0.0.1:18083

echo "=== build ==="
go build -o "$work/" ./cmd/gendt-train ./cmd/gendt-serve ./cmd/gendt-lb \
    ./cmd/gendt-validate ./cmd/gendt-rollout

echo "=== train current model + healthy candidate, corrupt the negative control ==="
"$work/gendt-train" "${TRAIN_ARGS[@]}" -epochs 2 -out "$work/current.json"
"$work/gendt-train" "${TRAIN_ARGS[@]}" -epochs 3 -out "$work/candidate.json"
"$work/gendt-validate" -model "$work/candidate.json" -corrupt 0.5 -seed 7 \
    -corrupt-out "$work/corrupt.json"

mkdir -p "$work/serving"
SERVING="$work/serving/model.json"
cp "$work/current.json" "$SERVING"

wait_http() {
    local url="$1"
    for _ in $(seq 1 200); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "FAIL: $url never became healthy"
    return 1
}

for url in "$LB" "$R1" "$R2" "$R3"; do
    if curl -fsS -o /dev/null "$url/healthz" 2>/dev/null; then
        echo "FAIL: something is already listening at $url — stale fleet from an earlier run?"
        exit 1
    fi
done

echo "=== boot fleet: 3 replicas off the shared serving path + lb ==="
for i in 1 2 3; do
    "$work/gendt-serve" -model "$SERVING" "${DATASET[@]}" \
        -addr "127.0.0.1:1808$i" >"$work/r$i.log" 2>&1 &
    pids+=($!)
done
wait_http "$R1/healthz"; wait_http "$R2/healthz"; wait_http "$R3/healthz"

"$work/gendt-lb" -addr 127.0.0.1:18080 -replica "$R1" -replica "$R2" -replica "$R3" \
    -admin-token "$TOKEN" -probe-interval 100ms -probe-timeout 1s >"$work/lb.log" 2>&1 &
pids+=($!)
wait_http "$LB/healthz"

# One fixed generation request through the LB: its .series is the
# bit-identity probe for "the fleet still serves the previous model".
PROBE='{"route":[{"t":0,"lat":55.9533,"lon":-3.1883},{"t":2,"lat":55.9538,"lon":-3.1878},{"t":4,"lat":55.9543,"lon":-3.1873},{"t":6,"lat":55.9548,"lon":-3.1868}],"seed":11,"samples":1}'
probe() {
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$PROBE" \
        "$LB/v1/generate" | jq -c '.series'
}
before="$(probe)"

ROLLOUT_ARGS=(-lb "$LB" -admin-token "$TOKEN" -replicas "$R1,$R2,$R3"
    -model-path "$SERVING" "${DATASET[@]}" -golden "$GOLDEN"
    -budget-window 500ms -drain-timeout 10s)

echo "=== corrupt candidate must halt at replica 1 and roll back ==="
if "$work/gendt-rollout" "${ROLLOUT_ARGS[@]}" -candidate "$work/corrupt.json" \
    >"$work/rollout-corrupt.log" 2>&1; then
    echo "FAIL: rollout promoted a corrupted model"
    cat "$work/rollout-corrupt.log"
    exit 1
fi
cat "$work/rollout-corrupt.log"

vars="$(curl -fsS "$LB/debug/vars")"
phase="$(echo "$vars" | jq -r '.rollout.phase')"
reason="$(echo "$vars" | jq -r '.rollout.reason')"
promoted="$(echo "$vars" | jq -r '.rollout.promoted')"
if [ "$phase" != "rolled_back" ]; then
    echo "FAIL: rollout phase is \"$phase\", want rolled_back"
    echo "$vars" | jq '.rollout'
    exit 1
fi
if [ "$promoted" != 0 ]; then
    echo "FAIL: corrupt rollout promoted $promoted replicas, want 0 (halt at the first)"
    exit 1
fi
case "$reason" in
    *dist/*) ;;
    *)
        echo "FAIL: rollback reason names no dist/ check: $reason"
        exit 1
        ;;
esac
echo "rolled back at replica 1: $reason"

if ! cmp -s "$SERVING" "$work/current.json"; then
    echo "FAIL: serving path was not restored to the previous model"
    exit 1
fi
after="$(probe)"
if [ "$before" != "$after" ]; then
    echo "FAIL: fleet responses changed across the rolled-back attempt"
    exit 1
fi
echo "previous model restored byte-for-byte; probe response bit-identical"

echo "=== healthy candidate must promote the whole fleet ==="
"$work/gendt-rollout" "${ROLLOUT_ARGS[@]}" -candidate "$work/candidate.json" \
    | tee "$work/rollout-good.log"

vars="$(curl -fsS "$LB/debug/vars")"
phase="$(echo "$vars" | jq -r '.rollout.phase')"
promoted="$(echo "$vars" | jq -r '.rollout.promoted')"
if [ "$phase" != "done" ] || [ "$promoted" != 3 ]; then
    echo "FAIL: rollout state is $phase $promoted/3, want done 3/3"
    echo "$vars" | jq '.rollout'
    exit 1
fi
if ! cmp -s "$SERVING" "$work/candidate.json"; then
    echo "FAIL: serving path does not hold the candidate after promotion"
    exit 1
fi
want_fp="$(curl -fsS "$R1/v1/models" | jq -r '.models[0].fingerprint')"
for url in "$R1" "$R2" "$R3"; do
    fp="$(curl -fsS "$url/v1/models" | jq -r '.models[0].fingerprint')"
    if [ "$fp" != "$want_fp" ]; then
        echo "FAIL: $url serves fingerprint $fp, fleet is split ($want_fp elsewhere)"
        exit 1
    fi
done
echo "fleet promoted: all replicas serve fingerprint $want_fp"

echo "rollout-smoke: OK"
