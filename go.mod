module gendt

go 1.22
