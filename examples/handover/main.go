// Handover: the paper's §6.3.2 use case — analyse handover behaviour
// (inter-handover time distribution) along unseen routes from
// GenDT-generated serving-cell series, without field measurements. GenDT
// is trained with an extra serving-cell channel; generated serving-rank
// values are snapped back to cell ids against each route's visible-cell
// sets.
package main

import (
	"fmt"
	"sort"

	"gendt"
)

func main() {
	data := gendt.NewDatasetB(gendt.DatasetSpec{Seed: 5, Scale: 0.03})

	// RSRP plus the serving-cell (rank) channel.
	chans := []gendt.ChannelSpec{
		gendt.KPIChannel(0),
		gendt.ServingRankChannel(),
	}
	const maxCells = 17 // must cover the serving-rank range
	train := gendt.PrepareAll(data.TrainRuns(), chans, maxCells)

	model := gendt.NewModel(gendt.Config{
		Channels: chans,
		Hidden:   24, BatchLen: 24, StepLen: 6, MaxCells: maxCells,
		Epochs: 10, Seed: 5,
	})
	fmt.Println("training", model, "with serving-cell channel")
	model.Train(train, nil)

	var realTimes, genTimes []float64
	for _, run := range data.TestRuns() {
		interval := run.Traj.TimeGranularity()
		// Real inter-handover times from the held-out measurements.
		realIDs := gendt.RealServingSeries(run.Meas)
		realTimes = append(realTimes, gendt.InterHandoverTimes(realIDs, interval)...)

		// Generated serving series -> snapped cell ids -> handover times.
		seq := gendt.PrepareSequence(run, chans, maxCells)
		out := model.Generate(seq)
		rank := make([]float64, len(out))
		for t := range out {
			rank[t] = out[t][1]
		}
		genIDs := gendt.DecodeServingSeries(seq, rank, 3)
		genTimes = append(genTimes, gendt.InterHandoverTimes(genIDs, interval)...)
	}

	fmt.Printf("\nreal handovers: %d, generated handovers: %d\n", len(realTimes), len(genTimes))
	fmt.Printf("median inter-handover time: real %.0fs, generated %.0fs\n",
		median(realTimes), median(genTimes))
	if hwd, err := gendt.HWD(realTimes, genTimes, 30); err == nil {
		fmt.Printf("inter-handover distribution HWD: %.2f s\n", hwd)
	}

	fmt.Println("\ninter-handover time CDF (seconds at 25/50/75/90%):")
	fmt.Printf("  real:      %s\n", quartiles(realTimes))
	fmt.Printf("  generated: %s\n", quartiles(genTimes))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func quartiles(xs []float64) string {
	if len(xs) == 0 {
		return "(no handovers)"
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	return fmt.Sprintf("%.0f / %.0f / %.0f / %.0f", q(0.25), q(0.5), q(0.75), q(0.9))
}
