// Whatif: the paper's §C.2 what-if analysis — study the radio-KPI impact
// of deploying a new cell *before building it*. We train GenDT on the
// existing deployment, find the weakest-coverage stretch of an unseen
// route, place a hypothetical new sectorized site there, regenerate the
// KPI series under the augmented network context, and compare. The
// simulator then plays the role of reality to validate the what-if
// prediction.
package main

import (
	"fmt"
	"math/rand"

	"gendt"
)

func main() {
	data := gendt.NewDatasetA(gendt.DatasetSpec{Seed: 3, Scale: 0.04})
	chans := []gendt.ChannelSpec{gendt.KPIChannel(0)} // RSRP
	train := gendt.PrepareAll(data.TrainRuns(), chans, 10)

	model := gendt.NewModel(gendt.Config{
		Channels: chans,
		Hidden:   24, BatchLen: 24, StepLen: 6, MaxCells: 10,
		Epochs: 12, Seed: 3,
	})
	fmt.Println("training", model, "on existing deployment")
	model.Train(train, nil)

	// Pick an unseen route and find its weakest-coverage location.
	run := data.TestRuns()[0]
	seq := gendt.PrepareSequence(run, chans, 10)
	base := model.DenormalizeSeries(model.Generate(seq))[0]
	worst, worstV := 0, base[0]
	for t, v := range base {
		if v < worstV {
			worst, worstV = t, v
		}
	}
	spot := run.Meas[worst].Loc
	fmt.Printf("\nweakest generated RSRP %.1f dBm at sample %d (%.5f, %.5f)\n",
		worstV, worst, spot.Lat, spot.Lon)

	// Hypothetical new site: three sectors at the weak spot.
	maxID := 0
	for _, c := range data.World.Deployment.Cells {
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	var newCells []gendt.Cell
	for s := 0; s < 3; s++ {
		newCells = append(newCells, gendt.Cell{
			ID: maxID + 1 + s, Site: spot, PMaxDBm: 43,
			Azimuth: float64(s) * 120, BeamWidth: 120, Height: 25,
		})
	}
	augmented := data.WithExtraCells(newCells)

	// Re-annotate the same trajectory against the augmented deployment and
	// regenerate. (The ground-truth KPIs in this re-simulation are used
	// only for validation below; GenDT sees only the context.)
	augMeas := augmented.DriveTest(run.Traj, rand.New(rand.NewSource(99)))
	augRun := gendt.Run{Scenario: run.Scenario, Traj: run.Traj, Meas: augMeas}
	augSeq := gendt.PrepareSequence(augRun, chans, 10)
	what := model.DenormalizeSeries(model.Generate(augSeq))[0]

	// Report the predicted improvement around the weak spot and overall.
	lo, hi := worst-20, worst+20
	if lo < 0 {
		lo = 0
	}
	if hi > len(base) {
		hi = len(base)
	}
	fmt.Printf("\nGenDT what-if prediction (new 3-sector site at weak spot):\n")
	fmt.Printf("  RSRP near weak spot: %.1f -> %.1f dBm (predicted)\n",
		mean(base[lo:hi]), mean(what[lo:hi]))
	fmt.Printf("  RSRP over full route: %.1f -> %.1f dBm (predicted)\n",
		mean(base), mean(what))

	// Validate against the simulator's "reality".
	realAug := make([]float64, len(augMeas))
	for i, m := range augMeas {
		realAug[i] = m.RSRP
	}
	realBase := make([]float64, len(run.Meas))
	for i, m := range run.Meas {
		realBase[i] = m.RSRP
	}
	fmt.Printf("\nsimulated reality:\n")
	fmt.Printf("  RSRP near weak spot: %.1f -> %.1f dBm (actual)\n",
		mean(realBase[lo:hi]), mean(realAug[lo:hi]))
	fmt.Printf("  RSRP over full route: %.1f -> %.1f dBm (actual)\n",
		mean(realBase), mean(realAug))
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
