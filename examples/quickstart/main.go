// Quickstart: synthesize a drive-test dataset, train a GenDT model on its
// training split, generate radio-KPI time series for an unseen trajectory,
// and report fidelity against the held-out ground truth.
package main

import (
	"fmt"
	"log"

	"gendt"
)

func main() {
	// 1. Synthesize a Dataset A analogue (walk/bus/tram around one city).
	//    Scale 0.05 gives ~750 one-second samples per scenario.
	data := gendt.NewDatasetA(gendt.DatasetSpec{Seed: 7, Scale: 0.05})
	fmt.Printf("dataset A: %d runs over %d cells\n",
		len(data.Runs), len(data.World.Deployment.Cells))

	// 2. Prepare the training split: RSRP and RSRQ channels, network
	//    context capped at the 10 nearest visible cells.
	chans := gendt.RSRPRSRQChannels()
	train := gendt.PrepareAll(data.TrainRuns(), chans, 10)

	// 3. Train GenDT.
	model := gendt.NewModel(gendt.Config{
		Channels: chans,
		Hidden:   24,
		BatchLen: 24, StepLen: 6,
		MaxCells: 10,
		Epochs:   12,
		Seed:     7,
	})
	fmt.Println("training", model)
	model.Train(train, func(f string, a ...any) { fmt.Printf("  "+f+"\n", a...) })

	// 4. Generate for every unseen test trajectory — the "virtual drive
	//    test" — and compare against the held-out ground truth (which an
	//    operator would not have; this validates the reproduction).
	fmt.Println("\nfidelity on unseen test trajectories:")
	for _, test := range data.TestRuns() {
		seq := gendt.PrepareSequence(test, chans, 10)
		series := model.DenormalizeSeries(model.Generate(seq))
		fmt.Printf("  %-5s (%d steps):", test.Scenario, seq.Len())
		for c, ch := range chans {
			real := make([]float64, seq.Len())
			for t := range real {
				real[t] = ch.Denormalize(seq.KPIs[t][c])
			}
			mae, err := gendt.MAE(real, series[c])
			if err != nil {
				log.Fatal(err)
			}
			dtw, _ := gendt.DTW(real, series[c], 50)
			hwd, _ := gendt.HWD(real, series[c], 40)
			fmt.Printf("  %s MAE=%.1f DTW=%.1f HWD=%.1f", ch.Name, mae, dtw, hwd)
		}
		fmt.Println()
	}

	// 5. The model separates reducible (model) from irreducible (data)
	//    uncertainty — the signal behind the paper's 90% measurement
	//    efficiency result.
	seq := gendt.PrepareSequence(data.TestRuns()[0], chans, 10)
	fmt.Printf("\nmodel uncertainty %.4f, data uncertainty %.4f\n",
		model.ModelUncertainty(seq, 4), model.DataUncertainty(seq))
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
