// Citydrive: the paper's motivating workload — an operator wants QoE
// estimates (throughput, packet error rate) along city-drive routes
// without sending a measurement van. We train GenDT on Dataset B's
// training routes, generate RSRP/RSRQ for unseen routes, and feed the
// generated KPIs to a QoE predictor, comparing against predictions from
// the real measurements (paper §6.3.1).
package main

import (
	"fmt"
	"math/rand"

	"gendt"
)

func main() {
	data := gendt.NewDatasetB(gendt.DatasetSpec{Seed: 9, Scale: 0.03})
	chans := gendt.RSRPRSRQChannels()
	train := gendt.PrepareAll(data.TrainRuns(), chans, 10)

	model := gendt.NewModel(gendt.Config{
		Channels: chans,
		Hidden:   24, BatchLen: 24, StepLen: 6, MaxCells: 10,
		Epochs: 10, Seed: 9,
	})
	fmt.Println("training", model, "on", len(train), "Dataset B routes")
	model.Train(train, nil)

	// Train the QoE predictor on real measurements + derived ground truth.
	rng := rand.New(rand.NewSource(1))
	pred := gendt.NewQoEPredictor(true, 16, 20, 2)
	var ms []gendt.Measurement
	var target []float64
	for _, r := range data.TrainRuns() {
		thr, _ := gendt.GroundTruthQoE(r.Meas, rng)
		ms = append(ms, r.Meas...)
		for _, v := range thr {
			target = append(target, v/gendt.ThroughputMaxMbps)
		}
	}
	pred.Fit(ms, target)

	// For each unseen city route: predict throughput from (a) real KPIs,
	// (b) GenDT-generated KPIs, and compare.
	fmt.Println("\nthroughput prediction on unseen routes (Mbps):")
	for _, run := range data.TestRuns() {
		if run.Scenario != "City Center 1" && run.Scenario != "City Center 2" {
			continue
		}
		seq := gendt.PrepareSequence(run, chans, 10)
		gen := model.DenormalizeSeries(model.Generate(seq))

		realRSRP := make([]float64, len(run.Meas))
		realRSRQ := make([]float64, len(run.Meas))
		for i, m := range run.Meas {
			realRSRP[i], realRSRQ[i] = m.RSRP, m.RSRQ
		}
		fromReal := scale(pred.Predict(run.Meas, realRSRP, realRSRQ), gendt.ThroughputMaxMbps)
		fromGen := scale(pred.Predict(run.Meas, gen[0], gen[1]), gendt.ThroughputMaxMbps)

		mae, _ := gendt.MAE(fromReal, fromGen)
		fmt.Printf("  %-14s %4d samples: mean thr (real KPIs) %5.1f vs (GenDT KPIs) %5.1f, MAE between predictions %.2f\n",
			run.Scenario, len(run.Meas), mean(fromReal), mean(fromGen), mae)
	}
	fmt.Println("\nclose means and small MAE indicate GenDT-generated KPIs are a")
	fmt.Println("dependable substitute for field measurements in QoE planning.")
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
