// Package gendt is a Go reproduction of "GenDT: Mobile Network Drive
// Testing Made Efficient with Generative Modeling" (CoNEXT 2022): a
// conditional deep generative model that synthesizes multivariate radio
// KPI time series (RSRP, RSRQ, SINR, CQI, and a serving-cell channel) for
// a drive-test trajectory, conditioned on the network context (the
// time-varying set of potential serving cells) and the environment context
// (land use and points of interest around the device).
//
// The package re-exports the stable public surface of the internal
// implementation:
//
//   - dataset synthesis (the simulated Dataset A / Dataset B analogues),
//   - sequence preparation and the GenDT model (train, generate,
//     uncertainty),
//   - the §5.2 baselines behind a common Generator interface,
//   - the §5.1 fidelity metrics, and
//   - the experiment harnesses for every table and figure of the paper.
//
// Quickstart:
//
//	data := gendt.NewDatasetA(gendt.DatasetSpec{Seed: 1, Scale: 0.05})
//	chans := gendt.RSRPRSRQChannels()
//	train := gendt.PrepareAll(data.TrainRuns(), chans, 10)
//	model := gendt.NewModel(gendt.Config{Channels: chans, Epochs: 10})
//	model.Train(train, nil)
//	test := gendt.PrepareSequence(data.TestRuns()[0], chans, 10)
//	series := model.DenormalizeSeries(model.Generate(test))
//	// series[0] is the generated RSRP series in dBm.
package gendt

import (
	"gendt/internal/baselines"
	"gendt/internal/cells"
	"gendt/internal/core"
	"gendt/internal/dataset"
	"gendt/internal/downstream"
	"gendt/internal/experiments"
	"gendt/internal/geo"
	"gendt/internal/mdt"
	"gendt/internal/metrics"
	"gendt/internal/sim"
)

// Model is the GenDT conditional generator (paper §4): GNN-node network,
// aggregation network, autoregressive ResGen residual, adversarial
// training, batch-based training and generation, and MC-dropout model
// uncertainty.
type Model = core.Model

// Config sizes and configures a Model; see core.Config for field docs.
type Config = core.Config

// NewModel constructs a GenDT model.
func NewModel(cfg Config) *Model { return core.NewModel(cfg) }

// ChannelSpec defines one generated KPI channel.
type ChannelSpec = core.ChannelSpec

// Sequence is a prepared trajectory: per-step normalized KPIs plus network
// and environment context.
type Sequence = core.Sequence

// Channel set constructors.
var (
	// StandardChannels returns the paper's four target KPIs
	// (RSRP, RSRQ, SINR, CQI).
	StandardChannels = core.StandardChannels
	// RSRPRSRQChannels returns the two KPIs available in Dataset B.
	RSRPRSRQChannels = core.RSRPRSRQChannels
	// ServingRankChannel returns the serving-cell channel used by the
	// handover use case (§6.3.2).
	ServingRankChannel = core.ServingRankChannel
	// KPIChannel returns the ChannelSpec for a radio KPI index.
	KPIChannel = core.KPIChannel
)

// InferModel is a frozen float32/int8 inference snapshot of a trained
// Model, built with Model.Freeze — the blocked-kernel fast path behind
// gendt-serve's -precision flag.
type InferModel = core.InferModel

// Precision names a serving backend: f64 (the live model), f32, or int8.
type Precision = core.Precision

// Serving precisions.
const (
	PrecisionF64  = core.PrecisionF64
	PrecisionF32  = core.PrecisionF32
	PrecisionInt8 = core.PrecisionInt8
)

// ModelGenerator is the read-only generation interface shared by the live
// Model and the frozen InferModel; the serving and validation layers are
// written against it. (Named to avoid colliding with the baselines'
// Generator interface below.)
type ModelGenerator = core.Generator

// PrepareOptions controls sequence preparation (cell cap, closed-loop
// load awareness).
type PrepareOptions = core.PrepareOptions

// PrepareSequence converts a measurement run into model-ready tensors.
func PrepareSequence(run Run, chans []ChannelSpec, maxCells int) *Sequence {
	return core.PrepareSequence(run, chans, maxCells)
}

// PrepareSequenceWith converts a measurement run into model-ready tensors
// with explicit options (e.g. the closed-loop LoadAware extension).
func PrepareSequenceWith(run Run, chans []ChannelSpec, opt PrepareOptions) *Sequence {
	return core.PrepareSequenceWith(run, chans, opt)
}

// PrepareAll prepares several runs at once.
func PrepareAll(runs []Run, chans []ChannelSpec, maxCells int) []*Sequence {
	return core.PrepareAll(runs, chans, maxCells)
}

// Dataset bundles a simulated world and the measurement runs taken in it.
type Dataset = dataset.Dataset

// DatasetSpec controls dataset synthesis; Scale=1 approximates the paper's
// sample counts.
type DatasetSpec = dataset.Spec

// Run is one measurement campaign: trajectory plus annotated measurements.
type Run = dataset.Run

// Dataset constructors and helpers.
var (
	// NewDatasetA synthesizes the Dataset A analogue (walk/bus/tram, 1 s).
	NewDatasetA = dataset.NewDatasetA
	// NewDatasetB synthesizes the Dataset B analogue (city/highway,
	// multi-city region, coarse granularity).
	NewDatasetB = dataset.NewDatasetB
	// LongComplexRun builds the §6.1.3 three-city test trajectory.
	LongComplexRun = dataset.LongComplexRun
	// Partition splits runs into geographically contiguous subsets (§6.2.2).
	Partition = dataset.Partition
)

// Generator is the common train/generate contract shared by GenDT and the
// baselines.
type Generator = baselines.Generator

// Baseline constructors (§5.2).
var (
	NewFDaS    = baselines.NewFDaS
	NewMLP     = baselines.NewMLP
	NewLSTMGNN = baselines.NewLSTMGNN
	NewDG      = baselines.NewDG
	// NewGenDT wraps a GenDT model in the Generator interface.
	NewGenDT = baselines.NewGenDT
)

// Fidelity metrics (§5.1).
var (
	// MAE is the mean absolute error between equal-length series.
	MAE = metrics.MAE
	// DTW is the normalized dynamic-time-warping distance.
	DTW = metrics.DTW
	// HWD is the histogram Wasserstein distance between two samples.
	HWD = metrics.HWD
)

// Point is a geographic coordinate; Trajectory is a timestamped sequence
// of device locations — the model's notion of a drive-test route.
type (
	Point      = geo.Point
	Trajectory = geo.Trajectory
)

// SpeedProfile shapes synthetic route speeds; RouteThrough builds a
// trajectory from sparse waypoints (the practical virtual-drive-test
// entry point — see also cmd/gendt-route).
type SpeedProfile = geo.SpeedProfile

// Route-building helpers and standard mobility profiles.
var (
	RouteThrough     = geo.RouteThrough
	WalkProfile      = geo.WalkProfile
	BusProfile       = geo.BusProfile
	TramProfile      = geo.TramProfile
	CityDriveProfile = geo.CityDriveProfile
	HighwayProfile   = geo.HighwayProfile
)

// World is the simulated radio environment a dataset was measured in.
// World.Annotate(tr) builds the context-only measurements a trained model
// generates against — the operational GenDT workflow of the paper's
// Figure 5, with no field measurement involved.
type World = sim.World

// Measurement is one drive-test sample with its context annotations.
type Measurement = sim.Measurement

// Cell is one sector of a cell site in a deployment.
type Cell = cells.Cell

// QoEPredictor is the §6.3.1 MLP that predicts a QoE metric (throughput or
// packet error rate) from radio KPIs.
type QoEPredictor = downstream.QoEPredictor

// Downstream use-case helpers (§6.3).
var (
	// GroundTruthQoE derives throughput and PER series from measurements.
	GroundTruthQoE = downstream.GroundTruthQoE
	// NewQoEPredictor builds a QoE regression model.
	NewQoEPredictor = downstream.NewQoEPredictor
	// SnapServingSeries converts a generated serving-rank channel into
	// serving-cell ids (raw per-sample snap).
	SnapServingSeries = downstream.SnapServingSeries
	// DecodeServingSeries is the persistence-aware (TTT-style) decoder for
	// the generated serving-rank channel.
	DecodeServingSeries = downstream.DecodeServingSeries
	// RealServingSeries extracts the measured serving-cell-id series.
	RealServingSeries = downstream.RealServingSeries
	// ModeFilter debounces a categorical id series (majority vote).
	ModeFilter = downstream.ModeFilter
	// InterHandoverTimes extracts durations between serving-cell changes.
	InterHandoverTimes = downstream.InterHandoverTimes
)

// QoE bounds for normalizing predictor targets.
const (
	ThroughputMaxMbps = downstream.ThroughputMaxMbps
	PERMax            = downstream.PERMax
)

// MDTSpec parameterizes a simulated MDT or crowdsourcing measurement
// campaign (the paper's §7.2 comparison, closed inside the simulator).
type MDTSpec = mdt.Spec

// MDT / crowdsourcing campaign helpers.
var (
	// DefaultMDT returns MDT-flavoured campaign parameters.
	DefaultMDT = mdt.DefaultMDT
	// DefaultCrowdsourcing returns crowdsourcing-flavoured parameters.
	DefaultCrowdsourcing = mdt.DefaultCrowdsourcing
	// CollectMDT runs a campaign against a world and returns runs usable
	// as GenDT training data.
	CollectMDT = mdt.Collect
)

// ExperimentOptions scales the paper-reproduction experiment harnesses.
type ExperimentOptions = experiments.Options

// Experiment presets.
var (
	// DefaultExperimentOptions is the standard reproduction scale.
	DefaultExperimentOptions = experiments.DefaultOptions
	// QuickExperimentOptions is a smoke-test scale.
	QuickExperimentOptions = experiments.QuickOptions
)
