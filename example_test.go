package gendt_test

import (
	"fmt"

	"gendt"
)

// ExampleModel_Generate shows the full GenDT workflow: synthesize a
// dataset, train on the geographically disjoint training split, and
// generate radio-KPI series for an unseen route.
func ExampleModel_Generate() {
	data := gendt.NewDatasetA(gendt.DatasetSpec{Seed: 42, Scale: 0.01})
	chans := gendt.RSRPRSRQChannels()
	train := gendt.PrepareAll(data.TrainRuns(), chans, 6)

	model := gendt.NewModel(gendt.Config{
		Channels: chans,
		Hidden:   8, BatchLen: 10, StepLen: 5, MaxCells: 6,
		Epochs: 1, Seed: 42,
	})
	model.Train(train, nil)

	seq := gendt.PrepareSequence(data.TestRuns()[0], chans, 6)
	series := model.DenormalizeSeries(model.Generate(seq))
	fmt.Println("channels:", len(series))
	fmt.Println("steps match trajectory:", len(series[0]) == seq.Len())
	fmt.Println("RSRP within physical range:",
		series[0][0] >= -140 && series[0][0] <= -44)
	// Output:
	// channels: 2
	// steps match trajectory: true
	// RSRP within physical range: true
}

// ExampleMAE shows the §5.1 fidelity metrics.
func ExampleMAE() {
	real := []float64{-80, -82, -85}
	gen := []float64{-81, -83, -84}
	mae, _ := gendt.MAE(real, gen)
	fmt.Printf("MAE %.2f dB\n", mae)
	// Output:
	// MAE 1.00 dB
}

// ExampleNewFDaS shows a baseline behind the common Generator interface.
func ExampleNewFDaS() {
	data := gendt.NewDatasetA(gendt.DatasetSpec{Seed: 7, Scale: 0.01})
	chans := gendt.RSRPRSRQChannels()
	train := gendt.PrepareAll(data.TrainRuns(), chans, 6)

	var g gendt.Generator = gendt.NewFDaS(len(chans), 1)
	g.Fit(train)
	out := g.Generate(gendt.PrepareSequence(data.TestRuns()[0], chans, 6))
	fmt.Println("name:", g.Name())
	fmt.Println("rows:", len(out) > 0)
	// Output:
	// name: FDaS
	// rows: true
}
